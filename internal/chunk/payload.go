package chunk

import (
	"fmt"
	"sort"

	"aggcache/internal/lattice"
)

// Chunk is the materialized payload of one chunk of one group-by: a sparse,
// key-sorted set of cells. Cell keys are row-major member offsets within the
// chunk (see Grid.ChunkOfCell). Each cell carries the measure's SUM and the
// contributing fact-row COUNT; both are distributive, so any roll-up of
// chunks can serve SUM, COUNT and AVG queries. A Chunk is immutable once
// built — except for pooled scratch chunks (GetScratchChunk), which their
// owner may rebuild between release points.
type Chunk struct {
	GB     lattice.ID
	Num    int32
	Keys   []uint64
	Vals   []float64
	Counts []int64
}

// CellBytes is the in-memory footprint charged per cell: an 8-byte key, an
// 8-byte sum and an 8-byte count — close to the paper's 20-byte fact tuples.
const CellBytes = 24

// OverheadBytes is the fixed per-chunk footprint charged by the cache.
const OverheadBytes = 64

// Cells returns the number of materialized cells.
func (c *Chunk) Cells() int { return len(c.Keys) }

// Bytes returns the cache footprint of the chunk.
func (c *Chunk) Bytes() int64 { return int64(len(c.Keys))*CellBytes + OverheadBytes }

// Value returns the measure sum of the cell with the given key.
func (c *Chunk) Value(key uint64) (float64, bool) {
	i := c.find(key)
	if i < 0 {
		return 0, false
	}
	return c.Vals[i], true
}

// Cell returns the sum and fact-row count of the cell with the given key.
func (c *Chunk) Cell(key uint64) (sum float64, count int64, ok bool) {
	i := c.find(key)
	if i < 0 {
		return 0, 0, false
	}
	return c.Vals[i], c.Counts[i], true
}

func (c *Chunk) find(key uint64) int {
	i := sort.Search(len(c.Keys), func(i int) bool { return c.Keys[i] >= key })
	if i < len(c.Keys) && c.Keys[i] == key {
		return i
	}
	return -1
}

// Rows returns the total fact-row count across the chunk's cells;
// invariant under roll-up, like Total.
func (c *Chunk) Rows() int64 {
	var n int64
	for _, v := range c.Counts {
		n += v
	}
	return n
}

// Total returns the sum of all cell values; useful as an aggregation
// invariant (roll-ups preserve totals).
func (c *Chunk) Total() float64 {
	t := 0.0
	for _, v := range c.Vals {
		t += v
	}
	return t
}

// String summarizes the chunk for diagnostics.
func (c *Chunk) String() string {
	return fmt.Sprintf("chunk{gb=%d num=%d cells=%d}", c.GB, c.Num, len(c.Keys))
}

// denseLimit is the largest chunk capacity for which the accumulator uses a
// dense array (a float64 sum plus an int64 count per slot plus the occupancy
// bitmap, ≈17 bytes/slot → at most ~1.1 MiB transient) instead of a hash
// map. Aggregated chunks — the hot aggregation targets — are far below it.
const denseLimit = 1 << 16

// CellMap accumulates cells for one chunk under construction. Adding the
// same key twice sums the values — the aggregation primitive. Accumulators
// created with Grid.NewCellMap (or pooled via Grid.GetCellMap) for
// small-capacity chunks use a dense array (≈20× faster per tuple than
// hashing); others fall back to a map.
type CellMap struct {
	m      map[uint64]cellAgg
	dense  []float64
	denseN []int64
	occ    []uint64 // occupancy bitmap for dense mode
	n      int
	// isDense selects the active mode. A pooled accumulator keeps the dense
	// arrays' capacity across a sparse reuse, so the flag — not the slices'
	// nilness — is authoritative.
	isDense bool
}

type cellAgg struct {
	sum   float64
	count int64
}

// NewCellMap returns an empty sparse accumulator.
func NewCellMap() *CellMap { return &CellMap{m: make(map[uint64]cellAgg)} }

// NewCellMap returns an accumulator for chunk num of group-by gb, dense when
// the chunk's cell capacity permits.
func (g *Grid) NewCellMap(gb lattice.ID, num int) *CellMap {
	cm := &CellMap{}
	cm.prepare(g.CellCapacity(gb, num))
	return cm
}

// prepare (re)configures an empty accumulator for the given cell capacity,
// reusing whatever backing arrays it already has. The caller must ensure cm
// holds no cells (fresh, or Reset — the pool invariant): dense slots grown
// into are only guaranteed zero because Reset zeroes every occupied slot
// before the arrays shrink.
func (cm *CellMap) prepare(capacity int64) {
	if capacity > 0 && capacity <= denseLimit {
		cm.isDense = true
		n := int(capacity)
		if cap(cm.dense) >= n {
			cm.dense = cm.dense[:n]
			cm.denseN = cm.denseN[:n]
		} else {
			cm.dense = make([]float64, n)
			cm.denseN = make([]int64, n)
		}
		w := (n + 63) / 64
		if cap(cm.occ) >= w {
			cm.occ = cm.occ[:w]
		} else {
			cm.occ = make([]uint64, w)
		}
		return
	}
	cm.isDense = false
	if cm.m == nil {
		cm.m = make(map[uint64]cellAgg)
	}
}

// Add accumulates one fact row's value into the cell with the given key.
func (cm *CellMap) Add(key uint64, v float64) { cm.AddCell(key, v, 1) }

// AddCell accumulates an already-aggregated cell (sum over count fact rows)
// into the cell with the given key — the roll-up primitive.
func (cm *CellMap) AddCell(key uint64, sum float64, count int64) {
	if cm.isDense {
		if cm.occ[key/64]&(1<<(key%64)) == 0 {
			cm.occ[key/64] |= 1 << (key % 64)
			cm.n++
		}
		cm.dense[key] += sum
		cm.denseN[key] += count
		return
	}
	a := cm.m[key]
	a.sum += sum
	a.count += count
	cm.m[key] = a
}

// Len returns the number of distinct cells accumulated.
func (cm *CellMap) Len() int {
	if cm.isDense {
		return cm.n
	}
	return len(cm.m)
}

// Reset clears the accumulator for reuse. In dense mode it zeroes exactly
// the occupied slots, which keeps the whole backing array zero — the
// invariant pooled reuse at a different capacity relies on.
func (cm *CellMap) Reset() {
	if cm.isDense {
		for i, w := range cm.occ {
			if w == 0 {
				continue
			}
			base := i * 64
			for b := 0; b < 64; b++ {
				if w&(1<<b) != 0 {
					cm.dense[base+b] = 0
					cm.denseN[base+b] = 0
				}
			}
			cm.occ[i] = 0
		}
		cm.n = 0
		return
	}
	clear(cm.m)
}

// Build sorts the accumulated cells into an immutable Chunk for chunk num of
// group-by gb. The chunk owns freshly allocated backing arrays, so it may be
// retained indefinitely (cache inserts, query results).
func (cm *CellMap) Build(gb lattice.ID, num int) *Chunk {
	return cm.BuildInto(gb, num, &Chunk{})
}

// BuildInto is Build emitting into c's backing arrays, growing them only
// when the cell count exceeds their capacity — the allocation-free path for
// intermediate results that live only until a parent roll-up consumes them.
// It returns c. Pair with GetScratchChunk/PutScratchChunk; never hand a
// reused chunk to an owner that retains it.
func (cm *CellMap) BuildInto(gb lattice.ID, num int, c *Chunk) *Chunk {
	n := cm.Len()
	c.GB, c.Num = gb, int32(num)
	if cap(c.Keys) < n {
		c.Keys = make([]uint64, 0, n)
		c.Vals = make([]float64, 0, n)
		c.Counts = make([]int64, 0, n)
	} else {
		c.Keys = c.Keys[:0]
		c.Vals = c.Vals[:0]
		c.Counts = c.Counts[:0]
	}
	if cm.isDense {
		for i, w := range cm.occ {
			if w == 0 {
				continue
			}
			base := uint64(i) * 64
			for b := uint64(0); b < 64; b++ {
				if w&(1<<b) != 0 {
					c.Keys = append(c.Keys, base+b)
					c.Vals = append(c.Vals, cm.dense[base+b])
					c.Counts = append(c.Counts, cm.denseN[base+b])
				}
			}
		}
		return c
	}
	for k := range cm.m {
		c.Keys = append(c.Keys, k)
	}
	sort.Slice(c.Keys, func(i, j int) bool { return c.Keys[i] < c.Keys[j] })
	for _, k := range c.Keys {
		a := cm.m[k]
		c.Vals = append(c.Vals, a.sum)
		c.Counts = append(c.Counts, a.count)
	}
	return c
}

// RollUpInto aggregates every cell of src into dst, translating cell keys
// from the source chunk's coordinate space to the destination chunk at
// (dstGB, dstNum). The source group-by must be an ancestor (componentwise ≥)
// of dstGB and the source chunk must lie inside the destination chunk's
// region. It returns the number of cells scanned.
//
// The key translation runs off a mapper memoized on the Grid (see
// rollUpMapper), so the steady state builds no tables and allocates nothing;
// per cell it does one table lookup on the fused path, or one div/mod per
// non-trivial dimension on the generic path.
func (g *Grid) RollUpInto(dst *CellMap, dstGB lattice.ID, dstNum int, src *Chunk) (int, error) {
	m, err := g.rollUpMapperFor(dstGB, dstNum, src.GB, int(src.Num))
	if err != nil {
		return 0, err
	}
	counts := src.Counts
	switch {
	case m.copyThrough:
		if counts == nil {
			for i, key := range src.Keys {
				dst.AddCell(key, src.Vals[i], 1)
			}
		} else {
			for i, key := range src.Keys {
				dst.AddCell(key, src.Vals[i], counts[i])
			}
		}
	case m.fused != nil:
		fused := m.fused
		if counts == nil {
			for i, key := range src.Keys {
				dst.AddCell(uint64(fused[key]), src.Vals[i], 1)
			}
		} else {
			for i, key := range src.Keys {
				dst.AddCell(uint64(fused[key]), src.Vals[i], counts[i])
			}
		}
	default:
		for i, key := range src.Keys {
			dk := m.base
			k := key
			for j, span := range m.spans {
				off := k % span
				k /= span
				dk += uint64(m.tables[j][off]) * m.strides[j]
			}
			count := int64(1)
			if counts != nil {
				count = counts[i]
			}
			dst.AddCell(dk, src.Vals[i], count)
		}
	}
	return len(src.Keys), nil
}

// Slice returns the cells of c whose members fall inside the given absolute
// member ranges (one Range per dimension, at c's group-by levels). It is
// used to trim chunk-aligned answers to the exact query region. Instead of
// decoding every cell back to member ids, each dimension's constraint is
// precomputed as an intra-chunk offset window and tested during the key
// decode. When the whole chunk qualifies, c itself is returned (chunks are
// immutable); when no cell can qualify, the scan is skipped entirely.
func (g *Grid) Slice(c *Chunk, ranges []Range) *Chunk {
	lv := g.lat.Level(c.GB)
	var cbuf [16]int32
	coords := g.Coords(c.GB, int(c.Num), cbuf[:0])
	var spans, offLo, offHi [16]uint64
	nd := len(coords)
	full := true
	for d, cd := range coords {
		r := g.MemberRange(d, lv[d], cd)
		lo, hi := r.Lo, r.Hi
		if d < len(ranges) {
			if ranges[d].Lo > lo {
				lo = ranges[d].Lo
			}
			if ranges[d].Hi < hi {
				hi = ranges[d].Hi
			}
		}
		if hi <= lo {
			return &Chunk{GB: c.GB, Num: c.Num}
		}
		spans[d] = uint64(r.Hi - r.Lo)
		offLo[d] = uint64(lo - r.Lo)
		offHi[d] = uint64(hi - r.Lo)
		if offLo[d] != 0 || offHi[d] != spans[d] {
			full = false
		}
	}
	if full {
		return c
	}
	out := &Chunk{GB: c.GB, Num: c.Num}
	for i, key := range c.Keys {
		k := key
		in := true
		for d := nd - 1; d >= 0; d-- {
			off := k % spans[d]
			k /= spans[d]
			if off < offLo[d] || off >= offHi[d] {
				in = false
				break
			}
		}
		if in {
			out.Keys = append(out.Keys, key)
			out.Vals = append(out.Vals, c.Vals[i])
			if c.Counts != nil {
				out.Counts = append(out.Counts, c.Counts[i])
			}
		}
	}
	return out
}
