package chunk

import (
	"fmt"
	"sort"

	"aggcache/internal/lattice"
)

// Chunk is the materialized payload of one chunk of one group-by: a sparse,
// key-sorted set of cells. Cell keys are row-major member offsets within the
// chunk (see Grid.ChunkOfCell). Each cell carries the measure's SUM and the
// contributing fact-row COUNT; both are distributive, so any roll-up of
// chunks can serve SUM, COUNT and AVG queries. A Chunk is immutable once
// built.
type Chunk struct {
	GB     lattice.ID
	Num    int32
	Keys   []uint64
	Vals   []float64
	Counts []int64
}

// CellBytes is the in-memory footprint charged per cell: an 8-byte key, an
// 8-byte sum and an 8-byte count — close to the paper's 20-byte fact tuples.
const CellBytes = 24

// OverheadBytes is the fixed per-chunk footprint charged by the cache.
const OverheadBytes = 64

// Cells returns the number of materialized cells.
func (c *Chunk) Cells() int { return len(c.Keys) }

// Bytes returns the cache footprint of the chunk.
func (c *Chunk) Bytes() int64 { return int64(len(c.Keys))*CellBytes + OverheadBytes }

// Value returns the measure sum of the cell with the given key.
func (c *Chunk) Value(key uint64) (float64, bool) {
	i := c.find(key)
	if i < 0 {
		return 0, false
	}
	return c.Vals[i], true
}

// Cell returns the sum and fact-row count of the cell with the given key.
func (c *Chunk) Cell(key uint64) (sum float64, count int64, ok bool) {
	i := c.find(key)
	if i < 0 {
		return 0, 0, false
	}
	return c.Vals[i], c.Counts[i], true
}

func (c *Chunk) find(key uint64) int {
	i := sort.Search(len(c.Keys), func(i int) bool { return c.Keys[i] >= key })
	if i < len(c.Keys) && c.Keys[i] == key {
		return i
	}
	return -1
}

// Rows returns the total fact-row count across the chunk's cells;
// invariant under roll-up, like Total.
func (c *Chunk) Rows() int64 {
	var n int64
	for _, v := range c.Counts {
		n += v
	}
	return n
}

// Total returns the sum of all cell values; useful as an aggregation
// invariant (roll-ups preserve totals).
func (c *Chunk) Total() float64 {
	t := 0.0
	for _, v := range c.Vals {
		t += v
	}
	return t
}

// String summarizes the chunk for diagnostics.
func (c *Chunk) String() string {
	return fmt.Sprintf("chunk{gb=%d num=%d cells=%d}", c.GB, c.Num, len(c.Keys))
}

// denseLimit is the largest chunk capacity for which the accumulator uses a
// dense array (8 bytes/slot → at most 512 KiB transient) instead of a hash
// map. Aggregated chunks — the hot aggregation targets — are far below it.
const denseLimit = 1 << 16

// CellMap accumulates cells for one chunk under construction. Adding the
// same key twice sums the values — the aggregation primitive. Accumulators
// created with Grid.NewCellMap for small-capacity chunks use a dense array
// (≈20× faster per tuple than hashing); others fall back to a map.
type CellMap struct {
	m      map[uint64]cellAgg
	dense  []float64
	denseN []int64
	occ    []uint64 // occupancy bitmap for dense mode
	n      int
}

type cellAgg struct {
	sum   float64
	count int64
}

// NewCellMap returns an empty sparse accumulator.
func NewCellMap() *CellMap { return &CellMap{m: make(map[uint64]cellAgg)} }

// NewCellMap returns an accumulator for chunk num of group-by gb, dense when
// the chunk's cell capacity permits.
func (g *Grid) NewCellMap(gb lattice.ID, num int) *CellMap {
	cap := g.CellCapacity(gb, num)
	if cap <= denseLimit {
		return &CellMap{
			dense:  make([]float64, cap),
			denseN: make([]int64, cap),
			occ:    make([]uint64, (cap+63)/64),
		}
	}
	return NewCellMap()
}

// Add accumulates one fact row's value into the cell with the given key.
func (cm *CellMap) Add(key uint64, v float64) { cm.AddCell(key, v, 1) }

// AddCell accumulates an already-aggregated cell (sum over count fact rows)
// into the cell with the given key — the roll-up primitive.
func (cm *CellMap) AddCell(key uint64, sum float64, count int64) {
	if cm.dense != nil {
		if cm.occ[key/64]&(1<<(key%64)) == 0 {
			cm.occ[key/64] |= 1 << (key % 64)
			cm.n++
		}
		cm.dense[key] += sum
		cm.denseN[key] += count
		return
	}
	a := cm.m[key]
	a.sum += sum
	a.count += count
	cm.m[key] = a
}

// Len returns the number of distinct cells accumulated.
func (cm *CellMap) Len() int {
	if cm.dense != nil {
		return cm.n
	}
	return len(cm.m)
}

// Reset clears the accumulator for reuse.
func (cm *CellMap) Reset() {
	if cm.dense != nil {
		for i, w := range cm.occ {
			if w == 0 {
				continue
			}
			base := i * 64
			for b := 0; b < 64; b++ {
				if w&(1<<b) != 0 {
					cm.dense[base+b] = 0
					cm.denseN[base+b] = 0
				}
			}
			cm.occ[i] = 0
		}
		cm.n = 0
		return
	}
	clear(cm.m)
}

// Build sorts the accumulated cells into an immutable Chunk for chunk num of
// group-by gb.
func (cm *CellMap) Build(gb lattice.ID, num int) *Chunk {
	if cm.dense != nil {
		c := &Chunk{
			GB: gb, Num: int32(num),
			Keys:   make([]uint64, 0, cm.n),
			Vals:   make([]float64, 0, cm.n),
			Counts: make([]int64, 0, cm.n),
		}
		for i, w := range cm.occ {
			if w == 0 {
				continue
			}
			base := uint64(i) * 64
			for b := uint64(0); b < 64; b++ {
				if w&(1<<b) != 0 {
					c.Keys = append(c.Keys, base+b)
					c.Vals = append(c.Vals, cm.dense[base+b])
					c.Counts = append(c.Counts, cm.denseN[base+b])
				}
			}
		}
		return c
	}
	c := &Chunk{
		GB: gb, Num: int32(num),
		Keys:   make([]uint64, 0, len(cm.m)),
		Vals:   make([]float64, len(cm.m)),
		Counts: make([]int64, len(cm.m)),
	}
	for k := range cm.m {
		c.Keys = append(c.Keys, k)
	}
	sort.Slice(c.Keys, func(i, j int) bool { return c.Keys[i] < c.Keys[j] })
	for i, k := range c.Keys {
		c.Vals[i] = cm.m[k].sum
		c.Counts[i] = cm.m[k].count
	}
	return c
}

// rollUpMapper caches per-dimension offset translation tables for rolling a
// source chunk's cells up into a destination chunk.
type rollUpMapper struct {
	srcSpans   []uint64  // per-dim member spans of the source chunk
	dstStrides []uint64  // per-dim row-major strides in the destination chunk
	tables     [][]int64 // tables[d][srcOff] = dst offset
}

// RollUpInto aggregates every cell of src into dst, translating cell keys
// from the source chunk's coordinate space to the destination chunk at
// (dstGB, dstNum). The source group-by must be an ancestor (componentwise ≥)
// of dstGB and the source chunk must lie inside the destination chunk's
// region. It returns the number of cells scanned.
func (g *Grid) RollUpInto(dst *CellMap, dstGB lattice.ID, dstNum int, src *Chunk) (int, error) {
	m, err := g.rollUpMapperFor(dstGB, dstNum, src.GB, int(src.Num))
	if err != nil {
		return 0, err
	}
	nd := len(m.tables)
	for i, key := range src.Keys {
		dk := uint64(0)
		// Decode src key most-significant dimension first by repeated
		// div/mod from the least significant end.
		k := key
		for d := nd - 1; d >= 0; d-- {
			off := k % m.srcSpans[d]
			k /= m.srcSpans[d]
			dk += uint64(m.tables[d][off]) * m.dstStrides[d]
		}
		count := int64(1)
		if src.Counts != nil {
			count = src.Counts[i]
		}
		dst.AddCell(dk, src.Vals[i], count)
	}
	return len(src.Keys), nil
}

func (g *Grid) rollUpMapperFor(dstGB lattice.ID, dstNum int, srcGB lattice.ID, srcNum int) (*rollUpMapper, error) {
	if !g.lat.ComputableFrom(dstGB, srcGB) {
		return nil, fmt.Errorf("chunk: group-by %s is not computable from %s",
			g.lat.LevelTupleString(dstGB), g.lat.LevelTupleString(srcGB))
	}
	if g.DescendantChunk(srcGB, srcNum, dstGB) != dstNum {
		return nil, fmt.Errorf("chunk: source chunk %d of %s does not fall in chunk %d of %s",
			srcNum, g.lat.LevelTupleString(srcGB), dstNum, g.lat.LevelTupleString(dstGB))
	}
	nd := g.sch.NumDims()
	var sbuf, dbuf [16]int32
	srcCoords := g.Coords(srcGB, srcNum, sbuf[:0])
	dstCoords := g.Coords(dstGB, dstNum, dbuf[:0])
	m := &rollUpMapper{
		srcSpans:   make([]uint64, nd),
		dstStrides: make([]uint64, nd),
		tables:     make([][]int64, nd),
	}
	dstSpans := make([]uint64, nd)
	for d := 0; d < nd; d++ {
		sl, dl := g.lat.LevelAt(srcGB, d), g.lat.LevelAt(dstGB, d)
		sr := g.MemberRange(d, sl, srcCoords[d])
		dr := g.MemberRange(d, dl, dstCoords[d])
		m.srcSpans[d] = uint64(sr.Hi - sr.Lo)
		dstSpans[d] = uint64(dr.Hi - dr.Lo)
		tab := make([]int64, sr.Hi-sr.Lo)
		dim := g.sch.Dim(d)
		for off := range tab {
			anc := dim.Ancestor(sl, dl, sr.Lo+int32(off))
			tab[off] = int64(anc - dr.Lo)
		}
		m.tables[d] = tab
	}
	stride := uint64(1)
	for d := nd - 1; d >= 0; d-- {
		m.dstStrides[d] = stride
		stride *= dstSpans[d]
	}
	return m, nil
}

// Slice returns the cells of c whose members fall inside the given absolute
// member ranges (one Range per dimension, at c's group-by levels). It is
// used to trim chunk-aligned answers to the exact query region.
func (g *Grid) Slice(c *Chunk, ranges []Range) *Chunk {
	out := &Chunk{GB: c.GB, Num: c.Num}
	var mbuf [16]int32
	for i, key := range c.Keys {
		members := g.CellMembers(c.GB, int(c.Num), key, mbuf[:0])
		in := true
		for d, r := range ranges {
			if members[d] < r.Lo || members[d] >= r.Hi {
				in = false
				break
			}
		}
		if in {
			out.Keys = append(out.Keys, key)
			out.Vals = append(out.Vals, c.Vals[i])
			if c.Counts != nil {
				out.Counts = append(out.Counts, c.Counts[i])
			}
		}
	}
	return out
}
