package chunk

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aggcache/internal/lattice"
	"aggcache/internal/schema"
)

func TestCellMapBuild(t *testing.T) {
	cm := NewCellMap()
	cm.Add(5, 1.5)
	cm.Add(1, 2.0)
	cm.Add(5, 0.5)
	if cm.Len() != 2 {
		t.Fatalf("Len = %d, want 2", cm.Len())
	}
	c := cm.Build(3, 7)
	if c.GB != 3 || c.Num != 7 {
		t.Fatalf("chunk identity = %d/%d", c.GB, c.Num)
	}
	if c.Cells() != 2 || c.Keys[0] != 1 || c.Keys[1] != 5 {
		t.Fatalf("keys = %v", c.Keys)
	}
	if v, ok := c.Value(5); !ok || v != 2.0 {
		t.Fatalf("Value(5) = %v,%v", v, ok)
	}
	if _, ok := c.Value(2); ok {
		t.Fatalf("Value(2) should miss")
	}
	if got := c.Total(); got != 4.0 {
		t.Fatalf("Total = %v, want 4", got)
	}
	cm.Reset()
	if cm.Len() != 0 {
		t.Fatalf("Reset did not clear")
	}
	if c.Bytes() != 2*CellBytes+OverheadBytes {
		t.Fatalf("Bytes = %d", c.Bytes())
	}
	// Counts follow the Adds: key 5 got two rows, key 1 one.
	if _, n, ok := c.Cell(5); !ok || n != 2 {
		t.Fatalf("Cell(5) count = %d", n)
	}
	if _, n, ok := c.Cell(1); !ok || n != 1 {
		t.Fatalf("Cell(1) count = %d", n)
	}
	if _, _, ok := c.Cell(9); ok {
		t.Fatalf("Cell(9) should miss")
	}
	if c.Rows() != 3 {
		t.Fatalf("Rows = %d, want 3", c.Rows())
	}
}

// TestDenseCellMapMatchesSparse drives the dense and sparse accumulator
// implementations with the same operations and expects identical chunks.
func TestDenseCellMapMatchesSparse(t *testing.T) {
	g := rollupTestGrid(t)
	lat := g.Lattice()
	top := lat.Top()
	dense := g.NewCellMap(top, 0) // capacity 1 → dense
	sparse := NewCellMap()
	ops := []struct {
		key uint64
		v   float64
	}{{0, 1.5}, {0, 2.5}, {0, -1}}
	for _, op := range ops {
		dense.Add(op.key, op.v)
		sparse.Add(op.key, op.v)
	}
	if dense.Len() != sparse.Len() {
		t.Fatalf("Len %d vs %d", dense.Len(), sparse.Len())
	}
	dc, sc := dense.Build(top, 0), sparse.Build(top, 0)
	if dc.Cells() != sc.Cells() || dc.Vals[0] != sc.Vals[0] {
		t.Fatalf("dense %v/%v vs sparse %v/%v", dc.Keys, dc.Vals, sc.Keys, sc.Vals)
	}
	dense.Reset()
	if dense.Len() != 0 {
		t.Fatalf("Reset left %d cells", dense.Len())
	}
	dense.Add(0, 7)
	if v, _ := dense.Build(top, 0).Value(0); v != 7 {
		t.Fatalf("post-Reset value %v, want 7 (stale accumulation?)", v)
	}
	// A base-level chunk with a large capacity gets the sparse fallback and
	// behaves identically.
	big := g.NewCellMap(lat.Base(), 0)
	big.Add(3, 1)
	big.Add(3, 2)
	if got, _ := big.Build(lat.Base(), 0).Value(3); got != 3 {
		t.Fatalf("sparse fallback value %v, want 3", got)
	}
}

// buildBaseChunks materializes every base-level chunk of a random sparse
// dataset directly.
func buildBaseChunks(g *Grid, cells map[[3]int32]float64) map[int]*Chunk {
	base := g.Lattice().Base()
	maps := make(map[int]*CellMap)
	for m, v := range cells {
		num, key := g.ChunkOfCell(base, m[:])
		cm, ok := maps[num]
		if !ok {
			cm = NewCellMap()
			maps[num] = cm
		}
		cm.Add(key, v)
	}
	out := make(map[int]*Chunk, len(maps))
	for num, cm := range maps {
		out[num] = cm.Build(base, num)
	}
	return out
}

func rollupTestGrid(t testing.TB) *Grid {
	t.Helper()
	p := schema.MustNewDimension("P", []schema.HierarchySpec{{Name: "Group", Card: 4}, {Name: "Code", Card: 16}})
	c := schema.MustNewDimension("C", []schema.HierarchySpec{{Name: "Store", Card: 12}})
	tm := schema.MustNewDimension("T", []schema.HierarchySpec{{Name: "Year", Card: 2}, {Name: "Month", Card: 8}})
	s := schema.MustNew("M", p, c, tm)
	return MustNewGrid(s, [][]int{{1, 2, 4}, {1, 3}, {1, 1, 2}})
}

// TestRollUpMatchesDirect aggregates base chunks up to every group-by and
// compares against directly aggregating the raw cells.
func TestRollUpMatchesDirect(t *testing.T) {
	g := rollupTestGrid(t)
	lat := g.Lattice()
	rng := rand.New(rand.NewSource(42))
	cells := make(map[[3]int32]float64)
	for i := 0; i < 300; i++ {
		m := [3]int32{int32(rng.Intn(16)), int32(rng.Intn(12)), int32(rng.Intn(8))}
		cells[m] += float64(rng.Intn(100))
	}
	baseChunks := buildBaseChunks(g, cells)

	for id := lattice.ID(0); int(id) < lat.NumNodes(); id++ {
		lv := lat.Level(id)
		// Direct aggregation of raw cells.
		want := make(map[[3]int32]float64)
		for m, v := range cells {
			var am [3]int32
			for d := 0; d < 3; d++ {
				am[d] = g.Schema().Dim(d).Ancestor(g.Schema().Dim(d).Hierarchy(), lv[d], m[d])
			}
			want[am] += v
		}
		// Roll up base chunks chunk by chunk.
		for num := 0; num < g.NumChunks(id); num++ {
			cm := NewCellMap()
			for _, bc := range g.AncestorChunks(id, num, lat.Base(), nil) {
				src, ok := baseChunks[bc]
				if !ok {
					continue
				}
				if _, err := g.RollUpInto(cm, id, num, src); err != nil {
					t.Fatalf("RollUpInto: %v", err)
				}
			}
			got := cm.Build(id, num)
			for i, key := range got.Keys {
				members := g.CellMembers(id, num, key, nil)
				var am [3]int32
				copy(am[:], members)
				if want[am] != got.Vals[i] {
					t.Fatalf("gb %s chunk %d cell %v: got %v want %v",
						lat.LevelTupleString(id), num, am, got.Vals[i], want[am])
				}
				delete(want, am)
			}
		}
		// All direct cells for this group-by should have been covered: we
		// deleted matches per chunk; leftover means a missing cell. We only
		// check per group-by by rebuilding want each iteration, so leftovers
		// that belong to other chunks were deleted above.
		if len(want) != 0 {
			t.Fatalf("gb %s: %d cells missing from rolled-up chunks", lat.LevelTupleString(id), len(want))
		}
	}
}

// TestRollUpTotalsInvariant: rolling any chunk set up preserves the sum.
func TestRollUpTotalsInvariant(t *testing.T) {
	f := func(seed int64) bool {
		g := rollupTestGrid(t)
		lat := g.Lattice()
		rng := rand.New(rand.NewSource(seed))
		cells := make(map[[3]int32]float64)
		n := 1 + rng.Intn(200)
		total := 0.0
		for i := 0; i < n; i++ {
			m := [3]int32{int32(rng.Intn(16)), int32(rng.Intn(12)), int32(rng.Intn(8))}
			v := float64(1 + rng.Intn(50))
			cells[m] += v
			total += v
		}
		baseChunks := buildBaseChunks(g, cells)
		// Pick a random group-by; aggregate everything into its chunks.
		id := lattice.ID(rng.Intn(lat.NumNodes()))
		sum := 0.0
		for num := 0; num < g.NumChunks(id); num++ {
			cm := NewCellMap()
			for _, bc := range g.AncestorChunks(id, num, lat.Base(), nil) {
				if src, ok := baseChunks[bc]; ok {
					if _, err := g.RollUpInto(cm, id, num, src); err != nil {
						return false
					}
				}
			}
			sum += cm.Build(id, num).Total()
		}
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestRollUpErrors(t *testing.T) {
	g := rollupTestGrid(t)
	lat := g.Lattice()
	base := lat.Base()
	src := &Chunk{GB: lat.Top(), Num: 0, Keys: []uint64{0}, Vals: []float64{1}}
	// Cannot roll up from a more aggregated group-by.
	if _, err := g.RollUpInto(NewCellMap(), base, 0, src); err == nil {
		t.Fatalf("expected error rolling up from an aggregated group-by")
	}
	// Wrong destination chunk.
	bsrc := &Chunk{GB: base, Num: int32(g.NumChunks(base) - 1)}
	if _, err := g.RollUpInto(NewCellMap(), lat.Top(), 0, bsrc); err != nil {
		t.Fatalf("top chunk should accept any base chunk: %v", err)
	}
	two := lat.MustID(2, 0, 0) // product base level only
	if g.NumChunks(two) < 2 {
		t.Fatalf("test needs ≥2 chunks")
	}
	if _, err := g.RollUpInto(NewCellMap(), two, 0, bsrc); err == nil {
		t.Fatalf("expected error: source chunk outside destination chunk")
	}
}

func TestSlice(t *testing.T) {
	g := rollupTestGrid(t)
	lat := g.Lattice()
	base := lat.Base()
	cm := NewCellMap()
	// Chunk 0 of base: product members 0..3, customer 0..3, time 0..3 (4
	// chunks on product => 16/4=4 members, 3 chunks on customer => 4, 2 on
	// time => 4).
	_, k1 := g.ChunkOfCell(base, []int32{0, 0, 0})
	_, k2 := g.ChunkOfCell(base, []int32{3, 3, 3})
	cm.Add(k1, 1)
	cm.Add(k2, 2)
	c := cm.Build(base, 0)
	out := g.Slice(c, []Range{{0, 2}, {0, 4}, {0, 4}})
	if out.Cells() != 1 {
		t.Fatalf("Slice kept %d cells, want 1", out.Cells())
	}
	if v, ok := out.Value(k1); !ok || v != 1 {
		t.Fatalf("sliced cell wrong: %v %v", v, ok)
	}
	all := g.Slice(c, []Range{{0, 4}, {0, 4}, {0, 4}})
	if all.Cells() != 2 {
		t.Fatalf("full slice kept %d cells, want 2", all.Cells())
	}
}
