package chunk

import (
	"math/rand"
	"sync"
	"testing"

	"aggcache/internal/lattice"
	"aggcache/internal/schema"
)

// TestSliceEdgeCases pins the kernel's trimming behavior on the inputs the
// fast paths special-case: chunks without a Counts column, empty chunks,
// empty intersections, and full coverage.
func TestSliceEdgeCases(t *testing.T) {
	g := rollupTestGrid(t)
	base := g.Lattice().Base()

	// A chunk with nil Counts (older payloads and some test fixtures): the
	// slice must keep Counts nil rather than fabricating one.
	cm := NewCellMap()
	_, k1 := g.ChunkOfCell(base, []int32{0, 0, 0})
	_, k2 := g.ChunkOfCell(base, []int32{3, 3, 3})
	cm.Add(k1, 1)
	cm.Add(k2, 2)
	built := cm.Build(base, 0)
	noCounts := &Chunk{GB: built.GB, Num: built.Num, Keys: built.Keys, Vals: built.Vals}
	out := g.Slice(noCounts, []Range{{0, 2}, {0, 4}, {0, 4}})
	if out.Cells() != 1 || out.Counts != nil {
		t.Fatalf("nil-Counts slice: cells=%d counts=%v, want 1 cell and nil counts", out.Cells(), out.Counts)
	}
	if v, ok := out.Value(k1); !ok || v != 1 {
		t.Fatalf("nil-Counts slice kept wrong cell: %v %v", v, ok)
	}

	// An empty chunk slices to an empty chunk with the same identity.
	empty := &Chunk{GB: base, Num: 5}
	out = g.Slice(empty, []Range{{0, 4}, {0, 4}, {0, 4}})
	if out.Cells() != 0 || out.GB != base || out.Num != 5 {
		t.Fatalf("empty slice = %v", out)
	}

	// Ranges that miss the chunk entirely: empty result without a scan.
	out = g.Slice(built, []Range{{100, 200}, {0, 4}, {0, 4}})
	if out.Cells() != 0 {
		t.Fatalf("disjoint slice kept %d cells", out.Cells())
	}

	// Full coverage returns the chunk itself — chunks are immutable, so the
	// trim is free.
	if out = g.Slice(built, []Range{{0, 4}, {0, 4}, {0, 4}}); out != built {
		t.Fatalf("full-coverage slice did not return the source chunk")
	}
}

// TestCellMapResetReuse drives the Reset-then-reuse cycle pooling depends
// on, in both dense and sparse modes and across capacity changes: a reused
// accumulator must never leak a previous run's cells.
func TestCellMapResetReuse(t *testing.T) {
	g := rollupTestGrid(t)
	lat := g.Lattice()
	base := lat.Base() // capacity 64 → dense

	// Dense: fill, build, reset, refill with different keys.
	cm := g.GetCellMap(base, 0)
	if !cm.isDense {
		t.Fatalf("base accumulator should be dense")
	}
	for k := uint64(0); k < 64; k++ {
		cm.Add(k, float64(k+1))
	}
	if c := cm.Build(base, 0); c.Cells() != 64 {
		t.Fatalf("dense build: %d cells", c.Cells())
	}
	cm.Reset()
	if cm.Len() != 0 {
		t.Fatalf("dense Reset left %d cells", cm.Len())
	}
	cm.Add(7, 3)
	c := cm.Build(base, 0)
	if c.Cells() != 1 || c.Keys[0] != 7 || c.Vals[0] != 3 {
		t.Fatalf("dense reuse leaked stale cells: %v %v", c.Keys, c.Vals)
	}
	PutCellMap(cm)

	// Pooled reuse across shrinking and regrowing capacities: the slots the
	// small-capacity use never touched must still be zero when the arrays
	// grow back.
	cm = g.GetCellMap(base, 0) // capacity 64 again (likely the pooled one)
	if got := cm.Len(); got != 0 {
		t.Fatalf("pooled accumulator arrived with %d cells", got)
	}
	top := lat.Top() // capacity 1
	cm.prepare(1)
	cm.Add(0, 5)
	if c := cm.Build(top, 0); c.Cells() != 1 || c.Vals[0] != 5 {
		t.Fatalf("shrunk reuse wrong: %v", c)
	}
	cm.Reset()
	cm.prepare(64)
	if got := cm.Build(base, 0); got.Cells() != 0 {
		t.Fatalf("regrown accumulator leaked %d cells: keys %v", got.Cells(), got.Keys)
	}
	PutCellMap(cm)

	// Sparse: a grid whose base capacity exceeds denseLimit falls back to
	// the map, and the same reset/reuse contract must hold there.
	big := bigChunkGrid(t)
	bigBase := big.Lattice().Base()
	sm := big.GetCellMap(bigBase, 0)
	if sm.isDense {
		t.Fatalf("big-capacity accumulator should be sparse (cap %d)", big.CellCapacity(bigBase, 0))
	}
	sm.Add(70000, 1)
	sm.Add(1, 2)
	sm.Reset()
	if sm.Len() != 0 {
		t.Fatalf("sparse Reset left %d cells", sm.Len())
	}
	sm.Add(3, 9)
	if c := sm.Build(bigBase, 0); c.Cells() != 1 || c.Keys[0] != 3 {
		t.Fatalf("sparse reuse leaked stale cells: %v", c.Keys)
	}
	PutCellMap(sm)

	// Mode flip on a pooled accumulator: sparse use, then dense use, must
	// not resurrect map cells.
	sm = big.GetCellMap(bigBase, 0)
	sm.Add(12345, 4)
	PutCellMap(sm)
	dm := big.GetCellMap(big.Lattice().Top(), 0)
	if dm.Len() != 0 {
		t.Fatalf("mode-flipped accumulator arrived with %d cells", dm.Len())
	}
	dm.Add(0, 1)
	if c := dm.Build(big.Lattice().Top(), 0); c.Cells() != 1 || c.Vals[0] != 1 {
		t.Fatalf("mode flip produced %v / %v", c.Keys, c.Vals)
	}
	PutCellMap(dm)
}

// bigChunkGrid returns a grid whose single base chunk exceeds denseLimit
// cells, forcing the sparse accumulator and the generic (non-fused) roll-up
// path.
func bigChunkGrid(t testing.TB) *Grid {
	t.Helper()
	a := schema.MustNewDimension("A", []schema.HierarchySpec{{Name: "L", Card: 300}})
	bd := schema.MustNewDimension("B", []schema.HierarchySpec{{Name: "L", Card: 300}})
	s := schema.MustNew("M", a, bd)
	return MustNewGrid(s, [][]int{{1, 1}, {1, 1}})
}

// TestRollUpFastPaths checks each mapper form directly: copy-through for
// identical group-bys, copy-through when only span-1 dimensions collapse,
// the fused table for small sources, and the generic path for large ones —
// all against a member-level reference aggregation.
func TestRollUpFastPaths(t *testing.T) {
	// Span-1 copy-through needs a dimension chunked one-member-per-chunk.
	p := schema.MustNewDimension("P", []schema.HierarchySpec{{Name: "Group", Card: 4}, {Name: "Code", Card: 16}})
	c := schema.MustNewDimension("C", []schema.HierarchySpec{{Name: "Store", Card: 12}})
	tm := schema.MustNewDimension("T", []schema.HierarchySpec{{Name: "Year", Card: 2}, {Name: "Month", Card: 8}})
	g := MustNewGrid(schema.MustNew("M", p, c, tm), [][]int{{1, 2, 4}, {1, 12}, {1, 1, 2}})
	lat := g.Lattice()
	base := lat.Base()

	cm := NewCellMap()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 40; i++ {
		cm.Add(uint64(rng.Intn(int(g.CellCapacity(base, 0)))), float64(1+rng.Intn(9)))
	}
	src := cm.Build(base, 0)

	// Same group-by: pure copy.
	m, err := g.rollUpMapperFor(base, 0, base, 0)
	if err != nil || !m.copyThrough {
		t.Fatalf("same-gb mapper: %v copyThrough=%v", err, m != nil && m.copyThrough)
	}
	out := NewCellMap()
	if _, err := g.RollUpInto(out, base, 0, src); err != nil {
		t.Fatalf("copy roll-up: %v", err)
	}
	same := out.Build(base, 0)
	if same.Cells() != src.Cells() || same.Total() != src.Total() {
		t.Fatalf("copy-through changed the chunk: %d/%v vs %d/%v",
			same.Cells(), same.Total(), src.Cells(), src.Total())
	}

	// Collapsing only the span-1 Store dimension: still copy-through.
	storeAll := lat.MustID(2, 0, 2)
	dst := g.DescendantChunk(base, 0, storeAll)
	m, err = g.rollUpMapperFor(storeAll, dst, base, 0)
	if err != nil {
		t.Fatalf("span-1 mapper: %v", err)
	}
	if !m.copyThrough {
		t.Fatalf("span-1-only collapse should be copy-through, got fused=%v generic=%v", m.fused != nil, m.tables != nil)
	}
	checkRollUpAgainstReference(t, g, storeAll, dst, src)

	// A genuinely translating small source: fused table.
	grp := lat.MustID(1, 1, 1)
	dst = g.DescendantChunk(base, 0, grp)
	m, err = g.rollUpMapperFor(grp, dst, base, 0)
	if err != nil {
		t.Fatalf("fused mapper: %v", err)
	}
	if m.copyThrough || m.fused == nil {
		t.Fatalf("small translating source should fuse (copy=%v fused=%v)", m.copyThrough, m.fused != nil)
	}
	checkRollUpAgainstReference(t, g, grp, dst, src)

	// A source above fusedLimit: generic per-dimension path.
	big := bigChunkGrid(t)
	blat := big.Lattice()
	bcm := NewCellMap()
	for i := 0; i < 200; i++ {
		bcm.Add(uint64(rng.Intn(90000)), float64(1+rng.Intn(9)))
	}
	bsrc := bcm.Build(blat.Base(), 0)
	m, err = big.rollUpMapperFor(blat.Top(), 0, blat.Base(), 0)
	if err != nil {
		t.Fatalf("generic mapper: %v", err)
	}
	if m.copyThrough || m.fused != nil || len(m.tables) == 0 {
		t.Fatalf("large source should use the generic path (copy=%v fused=%v)", m.copyThrough, m.fused != nil)
	}
	checkRollUpAgainstReference(t, big, blat.Top(), 0, bsrc)
}

// checkRollUpAgainstReference rolls src into (dstGB, dstNum) and compares
// every destination cell against a member-level reference computed with
// CellMembers + Dimension.Ancestor.
func checkRollUpAgainstReference(t *testing.T, g *Grid, dstGB lattice.ID, dstNum int, src *Chunk) {
	t.Helper()
	lat := g.Lattice()
	cm := g.NewCellMap(dstGB, dstNum)
	if _, err := g.RollUpInto(cm, dstGB, dstNum, src); err != nil {
		t.Fatalf("RollUpInto: %v", err)
	}
	got := cm.Build(dstGB, dstNum)

	want := make(map[uint64]float64)
	nd := g.Schema().NumDims()
	for i, key := range src.Keys {
		members := g.CellMembers(src.GB, int(src.Num), key, nil)
		am := make([]int32, nd)
		for d := 0; d < nd; d++ {
			am[d] = g.Schema().Dim(d).Ancestor(lat.LevelAt(src.GB, d), lat.LevelAt(dstGB, d), members[d])
		}
		num, dk := g.ChunkOfCell(dstGB, am)
		if num != dstNum {
			t.Fatalf("reference cell landed in chunk %d, want %d", num, dstNum)
		}
		want[dk] += src.Vals[i]
	}
	if got.Cells() != len(want) {
		t.Fatalf("rolled %d cells, reference has %d", got.Cells(), len(want))
	}
	for i, key := range got.Keys {
		if want[key] != got.Vals[i] {
			t.Fatalf("cell %d: got %v want %v", key, got.Vals[i], want[key])
		}
	}
}

// TestRollUpMapperCacheConcurrent hammers one fresh Grid's mapper cache from
// many goroutines — every (source chunk, destination group-by) pair misses
// initially, so builds race with lookups — and checks every result against a
// serially computed reference. Run with -race (make race / CI does).
func TestRollUpMapperCacheConcurrent(t *testing.T) {
	g := rollupTestGrid(t)
	lat := g.Lattice()
	rng := rand.New(rand.NewSource(11))
	cells := make(map[[3]int32]float64)
	for i := 0; i < 400; i++ {
		m := [3]int32{int32(rng.Intn(16)), int32(rng.Intn(12)), int32(rng.Intn(8))}
		cells[m] += float64(1 + rng.Intn(50))
	}
	baseChunks := buildBaseChunks(g, cells)

	// Serial reference: total per (gb, chunk) from a second, isolated grid
	// so the reference run does not warm the cache under test.
	ref := rollupTestGrid(t)
	type target struct {
		gb  lattice.ID
		num int
	}
	refTotals := make(map[target]float64)
	var targets []target
	for id := lattice.ID(0); int(id) < lat.NumNodes(); id++ {
		for num := 0; num < g.NumChunks(id); num++ {
			cm := NewCellMap()
			for _, bc := range ref.AncestorChunks(id, num, lat.Base(), nil) {
				if src, ok := baseChunks[bc]; ok {
					if _, err := ref.RollUpInto(cm, id, num, src); err != nil {
						t.Fatalf("reference roll-up: %v", err)
					}
				}
			}
			tg := target{gb: id, num: num}
			refTotals[tg] = cm.Build(id, num).Total()
			targets = append(targets, tg)
		}
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 4; rep++ {
				for i := w; i < len(targets); i += 1 + w%3 {
					tg := targets[i]
					cm := g.GetCellMap(tg.gb, tg.num)
					for _, bc := range g.AncestorChunks(tg.gb, tg.num, lat.Base(), nil) {
						if src, ok := baseChunks[bc]; ok {
							if _, err := g.RollUpInto(cm, tg.gb, tg.num, src); err != nil {
								errs <- err
								PutCellMap(cm)
								return
							}
						}
					}
					got := cm.BuildInto(tg.gb, tg.num, GetScratchChunk())
					if got.Total() != refTotals[tg] {
						t.Errorf("gb %d chunk %d: total %v, want %v", tg.gb, tg.num, got.Total(), refTotals[tg])
					}
					PutScratchChunk(got)
					PutCellMap(cm)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent roll-up: %v", err)
	}
}
