// Package aggcache_test holds the repository-level benchmarks: one
// testing.B benchmark per table and figure of the paper (see DESIGN.md §5
// for the experiment index), plus micro-benchmarks of the hot paths.
// cmd/aggbench prints the full tables; these benchmarks make the same
// measurements available to `go test -bench`.
package aggcache_test

import (
	"context"
	"testing"

	"aggcache/internal/apb"
	"aggcache/internal/backend"
	"aggcache/internal/bench"
	"aggcache/internal/cache"
	"aggcache/internal/chunk"
	"aggcache/internal/core"
	"aggcache/internal/lattice"
	"aggcache/internal/strategy"
	"aggcache/internal/workload"
)

// benchEnv builds the shared tiny-scale environment (fast enough for -bench
// runs; cmd/aggbench covers the larger scales).
func benchEnv(b *testing.B) *bench.Env {
	b.Helper()
	cfg := bench.DefaultConfig(apb.ScaleTiny)
	cfg.Queries = 60
	cfg.LookupBudget = 1_000_000
	cfg.Latency = backend.LatencyModel{Connect: 100_000, PerTuple: 100}
	e, err := bench.NewEnv(cfg)
	if err != nil {
		b.Fatalf("NewEnv: %v", err)
	}
	return e
}

// lookupBench measures Table 1's unit of work: one Find per group-by.
func lookupBench(b *testing.B, name bench.StrategyName, preloaded bool) {
	e := benchEnv(b)
	lat := e.Grid.Lattice()
	s, err := e.NewStrategy(name, 1_000_000)
	if err != nil {
		b.Fatalf("NewStrategy: %v", err)
	}
	if preloaded {
		base := lat.Base()
		for num := 0; num < e.Grid.NumChunks(base); num++ {
			s.OnInsert(&cache.Entry{Key: cache.Key{GB: base, Num: int32(num)}})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for id := lattice.ID(0); int(id) < lat.NumNodes(); id++ {
			_, _, _ = s.Find(id, 0)
		}
	}
}

func BenchmarkTable1LookupESMEmpty(b *testing.B)      { lookupBench(b, bench.StratESM, false) }
func BenchmarkTable1LookupESMPreloaded(b *testing.B)  { lookupBench(b, bench.StratESM, true) }
func BenchmarkTable1LookupESMCEmpty(b *testing.B)     { lookupBench(b, bench.StratESMC, false) }
func BenchmarkTable1LookupESMCPreloaded(b *testing.B) { lookupBench(b, bench.StratESMC, true) }
func BenchmarkTable1LookupVCMEmpty(b *testing.B)      { lookupBench(b, bench.StratVCM, false) }
func BenchmarkTable1LookupVCMPreloaded(b *testing.B)  { lookupBench(b, bench.StratVCM, true) }
func BenchmarkTable1LookupVCMCEmpty(b *testing.B)     { lookupBench(b, bench.StratVCMC, false) }
func BenchmarkTable1LookupVCMCPreloaded(b *testing.B) { lookupBench(b, bench.StratVCMC, true) }

// updateBench measures Table 2's unit of work: bulk-loading two adjacent
// levels through the strategy's maintenance path.
func updateBench(b *testing.B, name bench.StrategyName) {
	e := benchEnv(b)
	lat := e.Grid.Lattice()
	lvA := append([]int(nil), e.Grid.Schema().BaseLevel()...)
	lvA[len(lvA)-1] = 0
	lvB := append([]int(nil), lvA...)
	lvB[len(lvB)-2] = 0
	gbA := lat.MustID(lvA...)
	gbB := lat.MustID(lvB...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := e.NewStrategy(name, 0)
		if err != nil {
			b.Fatalf("NewStrategy: %v", err)
		}
		b.StartTimer()
		for _, gb := range []lattice.ID{gbA, gbB} {
			for num := 0; num < e.Grid.NumChunks(gb); num++ {
				s.OnInsert(&cache.Entry{Key: cache.Key{GB: gb, Num: int32(num)}})
			}
		}
	}
}

func BenchmarkTable2UpdateVCM(b *testing.B)  { updateBench(b, bench.StratVCM) }
func BenchmarkTable2UpdateVCMC(b *testing.B) { updateBench(b, bench.StratVCMC) }

// BenchmarkTable3SpaceOverhead reports the strategies' summary-state bytes
// as benchmark metrics (Table 3 is a space, not time, artifact).
func BenchmarkTable3SpaceOverhead(b *testing.B) {
	e := benchEnv(b)
	var vcm, vcmc int64
	for i := 0; i < b.N; i++ {
		s1, _ := e.NewStrategy(bench.StratVCM, 0)
		s2, _ := e.NewStrategy(bench.StratVCMC, 0)
		vcm, vcmc = s1.Overhead(), s2.Overhead()
	}
	b.ReportMetric(float64(vcm), "vcm-bytes")
	b.ReportMetric(float64(vcmc), "vcmc-bytes")
}

// streamBench measures one full query stream against a system; the unit of
// Figures 7–9.
func streamBench(b *testing.B, spec func(e *bench.Env) bench.SystemSpec) {
	e := benchEnv(b)
	var hits float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.RunStream(spec(e))
		if err != nil {
			b.Fatalf("RunStream: %v", err)
		}
		hits = res.HitRatio()
	}
	b.ReportMetric(hits, "hit-%")
}

func midCache(e *bench.Env) int64 { s := e.CacheSizes(); return s[len(s)/2] }

func BenchmarkFig7StreamTwoLevel(b *testing.B) {
	streamBench(b, func(e *bench.Env) bench.SystemSpec {
		return bench.SystemSpec{Strategy: bench.StratVCMC, Policy: bench.PolicyTwoLevel, Bytes: midCache(e), Preload: true}
	})
}

func BenchmarkFig8StreamBenefit(b *testing.B) {
	streamBench(b, func(e *bench.Env) bench.SystemSpec {
		return bench.SystemSpec{Strategy: bench.StratVCMC, Policy: bench.PolicyBenefit, Bytes: midCache(e)}
	})
}

func BenchmarkFig9StreamNoAgg(b *testing.B) {
	streamBench(b, func(e *bench.Env) bench.SystemSpec {
		return bench.SystemSpec{Strategy: bench.StratNoAgg, Policy: bench.PolicyBenefit, Bytes: midCache(e)}
	})
}

func BenchmarkFig9StreamESM(b *testing.B) {
	streamBench(b, func(e *bench.Env) bench.SystemSpec {
		return bench.SystemSpec{Strategy: bench.StratESM, Policy: bench.PolicyTwoLevel, Bytes: midCache(e), Preload: true, Budget: 1_000_000}
	})
}

func BenchmarkFig9StreamVCMC(b *testing.B) {
	streamBench(b, func(e *bench.Env) bench.SystemSpec {
		return bench.SystemSpec{Strategy: bench.StratVCMC, Policy: bench.PolicyTwoLevel, Bytes: midCache(e), Preload: true}
	})
}

// BenchmarkFig10Table4CompleteHits reports Figure 10/Table 4's quantity: the
// ESM-over-VCMC total time ratio on complete-hit queries.
func BenchmarkFig10Table4CompleteHits(b *testing.B) {
	e := benchEnv(b)
	var speedup float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		esm, err := e.RunStream(bench.SystemSpec{Strategy: bench.StratESM, Policy: bench.PolicyTwoLevel, Bytes: midCache(e), Preload: true, Budget: 1_000_000})
		if err != nil {
			b.Fatalf("esm: %v", err)
		}
		vcmc, err := e.RunStream(bench.SystemSpec{Strategy: bench.StratVCMC, Policy: bench.PolicyTwoLevel, Bytes: midCache(e), Preload: true})
		if err != nil {
			b.Fatalf("vcmc: %v", err)
		}
		if vt := vcmc.AvgHits().Total(); vt > 0 {
			speedup = float64(esm.AvgHits().Total()) / float64(vt)
		}
	}
	b.ReportMetric(speedup, "speedup")
}

// BenchmarkUnitAggBenefit measures §7.1's comparison directly: one
// aggregated chunk from cache vs from the backend.
func BenchmarkUnitAggBenefit(b *testing.B) {
	e := benchEnv(b)
	sys, err := e.NewSystem(bench.SystemSpec{
		Strategy: bench.StratVCMC, Policy: bench.PolicyTwoLevel,
		Bytes: e.BaseBytes() * 4, Preload: true,
	})
	if err != nil {
		b.Fatalf("NewSystem: %v", err)
	}
	lat := e.Grid.Lattice()
	q := core.Query{GB: lat.Top()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Evict the computed top chunk so each iteration aggregates anew.
		sys.Cache.Evict(cache.Key{GB: lat.Top(), Num: 0})
		if _, err := sys.Engine.Execute(context.Background(), q); err != nil {
			b.Fatalf("Execute: %v", err)
		}
	}
}

// BenchmarkUnitBackendCompute is the backend side of §7.1's comparison.
func BenchmarkUnitBackendCompute(b *testing.B) {
	e := benchEnv(b)
	lat := e.Grid.Lattice()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.Backend.ComputeChunks(context.Background(), lat.Top(), []int{0}); err != nil {
			b.Fatalf("ComputeChunks: %v", err)
		}
	}
}

// BenchmarkUnitCostVar runs the §7.1 path-spread analysis.
func BenchmarkUnitCostVar(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.UnitCostVar(e); err != nil {
			b.Fatalf("UnitCostVar: %v", err)
		}
	}
}

// --- micro-benchmarks of the hot paths ---

// BenchmarkRollUpKernel measures the aggregation kernel: all base chunks
// into the top chunk.
func BenchmarkRollUpKernel(b *testing.B) {
	e := benchEnv(b)
	lat := e.Grid.Lattice()
	base := lat.Base()
	chunks, _, err := e.Backend.ComputeGroupBy(base)
	if err != nil {
		b.Fatalf("ComputeGroupBy: %v", err)
	}
	var cells int64
	for _, c := range chunks {
		cells += int64(c.Cells())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cm := chunk.NewCellMap()
		for _, c := range chunks {
			if _, err := e.Grid.RollUpInto(cm, lat.Top(), 0, c); err != nil {
				b.Fatalf("RollUpInto: %v", err)
			}
		}
	}
	b.SetBytes(cells * 16)
}

// BenchmarkBackendScan measures the clustered-index scan path.
func BenchmarkBackendScan(b *testing.B) {
	e := benchEnv(b)
	lat := e.Grid.Lattice()
	nums := make([]int, e.Grid.NumChunks(lat.Base()))
	for i := range nums {
		nums[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.Backend.ComputeChunks(context.Background(), lat.Base(), nums); err != nil {
			b.Fatalf("ComputeChunks: %v", err)
		}
	}
	b.SetBytes(int64(e.Table.Len()) * 16)
}

// BenchmarkVCMCFind measures the O(1) lookup claim on a warm cache.
func BenchmarkVCMCFind(b *testing.B) {
	e := benchEnv(b)
	lat := e.Grid.Lattice()
	s, _ := e.NewStrategy(bench.StratVCMC, 0)
	base := lat.Base()
	for num := 0; num < e.Grid.NumChunks(base); num++ {
		s.OnInsert(&cache.Entry{Key: cache.Key{GB: base, Num: int32(num)}})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, found, _ := s.Find(lat.Top(), 0); !found {
			b.Fatalf("not found")
		}
	}
}

// BenchmarkWorkloadGenerator measures query stream generation.
func BenchmarkWorkloadGenerator(b *testing.B) {
	e := benchEnv(b)
	gen, err := workload.NewGenerator(e.Grid, workload.DefaultMix, 2, 1)
	if err != nil {
		b.Fatalf("NewGenerator: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Next()
	}
}

// BenchmarkEngineCompleteHit measures a fully warm end-to-end query.
func BenchmarkEngineCompleteHit(b *testing.B) {
	e := benchEnv(b)
	sys, err := e.NewSystem(bench.SystemSpec{
		Strategy: bench.StratVCMC, Policy: bench.PolicyTwoLevel,
		Bytes: e.BaseBytes() * 4, Preload: true,
	})
	if err != nil {
		b.Fatalf("NewSystem: %v", err)
	}
	q := core.Query{GB: e.Grid.Lattice().Base()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Engine.Execute(context.Background(), q); err != nil {
			b.Fatalf("Execute: %v", err)
		}
	}
}

// BenchmarkConcurrentStream measures end-to-end throughput with many
// goroutines sharing one warm engine — the workload the cache lock split and
// singleflight dedup target. Run with -cpu 1,2,4 to see the scaling.
func BenchmarkConcurrentStream(b *testing.B) {
	e := benchEnv(b)
	sys, err := e.NewSystem(bench.SystemSpec{
		Strategy: bench.StratVCMC, Policy: bench.PolicyTwoLevel,
		Bytes: e.BaseBytes() * 4, Preload: true,
	})
	if err != nil {
		b.Fatalf("NewSystem: %v", err)
	}
	gen, err := workload.NewGenerator(e.Grid, workload.DefaultMix, 2, e.Cfg.Seed+2000)
	if err != nil {
		b.Fatalf("NewGenerator: %v", err)
	}
	queries, _ := gen.Stream(64)
	for i, q := range queries {
		if _, err := sys.Engine.Execute(context.Background(), q); err != nil {
			b.Fatalf("warm query %d: %v", i, err)
		}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := sys.Engine.Execute(context.Background(), queries[i%len(queries)]); err != nil {
				b.Errorf("Execute: %v", err)
				return
			}
			i++
		}
	})
}

// BenchmarkStrategyInsertEvictChurn measures maintenance under churn (the
// cost VCM/VCMC pay for O(1) lookups).
func BenchmarkStrategyInsertEvictChurn(b *testing.B) {
	for _, name := range []bench.StrategyName{bench.StratVCM, bench.StratVCMC} {
		b.Run(string(name), func(b *testing.B) {
			e := benchEnv(b)
			lat := e.Grid.Lattice()
			s, _ := e.NewStrategy(name, 0)
			base := lat.Base()
			n := e.Grid.NumChunks(base)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				num := i % n
				s.OnInsert(&cache.Entry{Key: cache.Key{GB: base, Num: int32(num)}})
				s.OnEvent(cache.Event{Key: cache.Key{GB: base, Num: int32(num)}, Reason: cache.Evicted, Entry: &cache.Entry{Key: cache.Key{GB: base, Num: int32(num)}}})
			}
		})
	}
}

// sanity check that the bench environment stays valid for strategies used
// above (guards against accidental preset drift).
func TestBenchEnvSanity(t *testing.T) {
	cfg := bench.DefaultConfig(apb.ScaleTiny)
	cfg.Latency = backend.LatencyModel{}
	e, err := bench.NewEnv(cfg)
	if err != nil {
		t.Fatalf("NewEnv: %v", err)
	}
	var s strategy.Strategy
	s, err = e.NewStrategy(bench.StratVCMC, 0)
	if err != nil || s == nil {
		t.Fatalf("NewStrategy: %v", err)
	}
}
