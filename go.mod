module aggcache

go 1.22
