// Threetier: the paper's full deployment shape — a backend database server
// and a middle-tier cache server on their own TCP endpoints, and a client
// speaking the mdq query language to the middle tier. Everything runs in
// this process but talks over real localhost sockets with the gob wire
// protocols.
package main

import (
	"context"
	"fmt"
	"log"

	"aggcache/internal/apb"
	"aggcache/internal/backend"
	"aggcache/internal/cache"
	"aggcache/internal/core"
	"aggcache/internal/mtier"
	"aggcache/internal/sizer"
	"aggcache/internal/strategy"
)

func main() {
	cfg := apb.New(apb.ScaleTiny)

	// ---- Tier 3: the backend database server ----
	grid, table, err := cfg.Build(5)
	if err != nil {
		log.Fatal(err)
	}
	dbEngine, err := backend.NewEngine(grid, table, backend.DefaultLatency)
	if err != nil {
		log.Fatal(err)
	}
	dbServer := backend.NewServer(dbEngine)
	dbAddr, err := dbServer.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer dbServer.Close()
	fmt.Printf("backend tier:     %d rows served on %s\n", table.Len(), dbAddr)

	// ---- Tier 2: the middle tier with the aggregate aware cache ----
	remoteDB, err := backend.Dial(dbAddr)
	if err != nil {
		log.Fatal(err)
	}
	defer remoteDB.Close()
	sizes := sizer.NewEstimate(grid, int64(table.Len()))
	chunkCache, err := cache.New(256<<10, cache.NewTwoLevel())
	if err != nil {
		log.Fatal(err)
	}
	middle, err := core.New(grid, chunkCache, strategy.NewVCMC(grid, sizes), remoteDB, sizes)
	if err != nil {
		log.Fatal(err)
	}
	mtServer := mtier.NewServer(middle)
	mtAddr, err := mtServer.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer mtServer.Close()
	fmt.Printf("middle tier:      VCMC + two-level policy, 256KB cache, serving on %s\n", mtAddr)

	// ---- Tier 1: the client, speaking mdq over TCP ----
	client, err := mtier.Dial(mtAddr)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	fmt.Println("client:           connected")

	session := []string{
		"SUM(UnitSales) BY Product:Code, Time:Month, Channel:Base",
		"SUM(UnitSales) BY Product:Group, Time:Month",
		"SUM(UnitSales) BY Time:Month",
		"AVG(UnitSales) BY Time:Year",
		"COUNT(UnitSales) BY Product:Group",
	}
	fmt.Println("\nclient session:")
	for _, src := range session {
		resp, err := client.Query(src)
		if err != nil {
			log.Fatal(err)
		}
		where := "backend over TCP"
		if resp.CompleteHit {
			where = "middle-tier cache"
			if resp.Aggregated {
				where = "middle-tier cache (aggregated)"
			}
		}
		var total float64
		for _, c := range resp.Cells {
			total += c.Value
		}
		fmt.Printf("  %-55s %4d cells  %-30s (%v)\n", src, len(resp.Cells), where, resp.Total().Round(1000))
	}

	// Verify the distributed answer against a direct computation.
	lat := grid.Lattice()
	local, _, err := dbEngine.ComputeChunks(context.Background(), lat.Top(), []int{0})
	if err != nil {
		log.Fatal(err)
	}
	resp, err := client.Query("SUM(UnitSales) BY Product:Group WHERE Product:Group IN 0..1")
	if err != nil {
		log.Fatal(err)
	}
	var total float64
	for _, c := range resp.Cells {
		total += c.Value
	}
	fmt.Printf("\nconsistency check: client total %.2f == backend total %.2f\n",
		total, local[0].Total())
}
