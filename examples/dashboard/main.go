// Dashboard: an analyst session in the mdq query language — the drill-down /
// roll-up browsing pattern the paper's workload models (§7.2). The session
// preloads the cache with the two-level policy's group-by choice, then walks
// a typical exploration path; roll-ups and repeats are answered inside the
// cache.
package main

import (
	"context"
	"fmt"
	"log"

	"aggcache/internal/apb"
	"aggcache/internal/backend"
	"aggcache/internal/cache"
	"aggcache/internal/core"
	"aggcache/internal/mdq"
	"aggcache/internal/sizer"
	"aggcache/internal/strategy"
)

func main() {
	cfg := apb.New(apb.ScaleTiny)
	grid, table, err := cfg.Build(7)
	if err != nil {
		log.Fatal(err)
	}
	be, err := backend.NewEngine(grid, table, backend.DefaultLatency)
	if err != nil {
		log.Fatal(err)
	}
	sizes := sizer.NewEstimate(grid, int64(table.Len()))
	c, err := cache.New(64<<10, cache.NewTwoLevel())
	if err != nil {
		log.Fatal(err)
	}
	engine, err := core.New(grid, c, strategy.NewVCMC(grid, sizes), be, sizes)
	if err != nil {
		log.Fatal(err)
	}

	// Two-level policy step 3: preload the group-by with the most lattice
	// descendants that fits the cache.
	if gb, ok, err := engine.Preload(context.Background()); err != nil {
		log.Fatal(err)
	} else if ok {
		fmt.Printf("preloaded group-by %s (%d chunks)\n\n",
			grid.Lattice().LevelTupleString(gb), grid.NumChunks(gb))
	}

	session := []string{
		// Start broad: sales per year.
		"SUM(UnitSales) BY Time:Year",
		// Drill into year 0 by month.
		"SUM(UnitSales) BY Time:Month WHERE Time:Month IN 0..3",
		// Add the product dimension.
		"SUM(UnitSales) BY Product:Group, Time:Month WHERE Time:Month IN 0..3",
		// Pivot to channels for the same months.
		"SUM(UnitSales) BY Channel:Base, Time:Month WHERE Time:Month IN 0..3",
		// Roll back up: product groups over all time.
		"SUM(UnitSales) BY Product:Group",
		// Grand total.
		"SUM(UnitSales) BY Product:Group WHERE Product:Group IN 0..0",
	}
	for _, src := range session {
		q, agg, err := mdq.Compile(src, grid)
		if err != nil {
			log.Fatal(err)
		}
		res, err := engine.Execute(context.Background(), q)
		if err != nil {
			log.Fatal(err)
		}
		source := "backend"
		if res.CompleteHit {
			if res.AggregatedTuples > 0 {
				source = "cache (aggregated)"
			} else {
				source = "cache (direct)"
			}
		}
		fmt.Printf("mdq> %s\n", src)
		fmt.Printf("     [%s]\n", source)
		fmt.Print(indent(mdq.FormatResult(grid, res, agg, 6)))
		fmt.Println()
	}

	st := engine.Stats()
	fmt.Printf("session: %d queries, %d answered entirely from the cache\n",
		st.Queries, st.CompleteHits)
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "     " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			lines = append(lines, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		lines = append(lines, cur)
	}
	return lines
}
