// Quickstart: build an aggregate aware cache over a synthetic APB-1 dataset
// and watch an aggregate query get answered from the cache — by aggregating
// cached chunks — without touching the backend.
package main

import (
	"context"
	"fmt"
	"log"

	"aggcache/internal/apb"
	"aggcache/internal/backend"
	"aggcache/internal/cache"
	"aggcache/internal/core"
	"aggcache/internal/sizer"
	"aggcache/internal/strategy"
)

func main() {
	// 1. Schema + synthetic fact data (Product × Time × Channel, tiny scale).
	cfg := apb.New(apb.ScaleTiny)
	grid, table, err := cfg.Build(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d rows, %d group-bys in the lattice\n",
		table.Len(), grid.Lattice().NumNodes())

	// 2. The three tiers: a backend engine, a chunk cache with the paper's
	// two-level replacement policy, and the VCMC lookup strategy (virtual
	// counts + cost-based path choice).
	be, err := backend.NewEngine(grid, table, backend.DefaultLatency)
	if err != nil {
		log.Fatal(err)
	}
	sizes := sizer.NewEstimate(grid, int64(table.Len()))
	c, err := cache.New(1<<20, cache.NewTwoLevel())
	if err != nil {
		log.Fatal(err)
	}
	engine, err := core.New(grid, c, strategy.NewVCMC(grid, sizes), be, sizes)
	if err != nil {
		log.Fatal(err)
	}

	lat := grid.Lattice()
	show := func(name string, q core.Query) {
		res, err := engine.Execute(context.Background(), q)
		if err != nil {
			log.Fatal(err)
		}
		source := "backend"
		if res.CompleteHit {
			source = "cache"
			if res.AggregatedTuples > 0 {
				source = "cache, by aggregating " + fmt.Sprint(res.AggregatedTuples) + " cached tuples"
			}
		}
		fmt.Printf("%-28s total=%.2f cells=%-4d from %s\n", name, res.Total(), res.Cells(), source)
	}

	// 3. A detailed query misses and is fetched from the backend …
	show("base-level query:", core.WholeGroupBy(lat.Base()))
	// … after which every roll-up is answered inside the cache.
	show("roll-up to (Product,Year):", core.WholeGroupBy(lat.MustID(2, 1, 0)))
	show("roll-up to (Year):", core.WholeGroupBy(lat.MustID(0, 1, 0)))
	show("grand total:", core.WholeGroupBy(lat.Top()))

	st := engine.Stats()
	fmt.Printf("\n%d queries, %d complete hits, %d backend round trips\n",
		st.Queries, st.CompleteHits, st.BackendQueries)
}
