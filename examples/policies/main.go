// Policies: replay the same OLAP query stream against four cache
// configurations and compare complete-hit ratios and response times — a
// live, miniature version of the paper's Figures 7–9.
package main

import (
	"fmt"
	"log"

	"aggcache/internal/apb"
	"aggcache/internal/backend"
	"aggcache/internal/bench"
)

func main() {
	cfg := bench.DefaultConfig(apb.ScaleTiny)
	cfg.Queries = 150
	cfg.Latency = backend.DefaultLatency
	env, err := bench.NewEnv(cfg)
	if err != nil {
		log.Fatal(err)
	}
	bytes := env.CacheSizes()[1] // a cache well below the base table size
	fmt.Printf("dataset: %d rows; cache %s; stream of %d queries (30/30/30/10 drill/roll/proximity/random)\n\n",
		env.Table.Len(), bench.SizeLabel(bytes), cfg.Queries)

	systems := []struct {
		name string
		spec bench.SystemSpec
	}{
		{"no aggregation + benefit policy", bench.SystemSpec{
			Strategy: bench.StratNoAgg, Policy: bench.PolicyBenefit, Bytes: bytes}},
		{"VCMC + benefit policy", bench.SystemSpec{
			Strategy: bench.StratVCMC, Policy: bench.PolicyBenefit, Bytes: bytes}},
		{"VCMC + two-level policy", bench.SystemSpec{
			Strategy: bench.StratVCMC, Policy: bench.PolicyTwoLevel, Bytes: bytes, Preload: true}},
		{"ESM + two-level policy", bench.SystemSpec{
			Strategy: bench.StratESM, Policy: bench.PolicyTwoLevel, Bytes: bytes, Preload: true, Budget: 1_000_000}},
	}

	fmt.Printf("%-34s %10s %12s %14s\n", "system", "hits", "avg query", "backend trips")
	for _, s := range systems {
		res, err := env.RunStream(s.spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s %8.0f %% %10.3f ms %14d\n",
			s.name, res.HitRatio(),
			float64(res.AvgAll().Nanoseconds())/1e6,
			res.Queries-res.CompleteHits)
	}

	fmt.Println("\nthe active cache (aggregation-capable) answers far more queries locally;")
	fmt.Println("the two-level policy protects backend chunks and preloads an aggregatable group-by.")
}
