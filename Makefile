# Standard targets; `make ci` is what the checks run.

GO ?= go

.PHONY: build test vet race bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 100x -run XXX .

ci: vet race
