# Standard targets; `make ci` is what the checks run.

GO ?= go

.PHONY: build test vet race bench bench-kernel bench-shards bench-wire bench-cluster bench-overload bench-recycle bench-tiered soak-shards soak-cluster soak-overload soak-tiered fuzz-wire fuzz-peer fuzz-codec fmt lint cover chaos ci FORCE

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 100x -run XXX .

# bench-kernel runs the aggregation-kernel micro-benchmarks with allocation
# reporting and the machine-readable kernel experiment (writes BENCH_4.json).
bench-kernel:
	$(GO) test ./internal/chunk -run XXX -bench 'RollUpInto|CellMapBuild|GridSlice' -benchmem -benchtime 20000x | tee kernel_bench.txt
	$(GO) run ./cmd/aggbench -scale small -exp kernel

# bench-shards measures cache-lock scaling across 1/4/16 shards and
# 1/4/8 concurrent clients (writes BENCH_5.json).
bench-shards:
	$(GO) run ./cmd/aggbench -scale small -exp shards

# bench-wire compares the retired gob transport against the binary framing
# layer under pipelined concurrent load (writes BENCH_6.json).
bench-wire:
	$(GO) run ./cmd/aggbench -scale tiny -exp wire

# bench-cluster sweeps the distributed cache tier from 1 to 4 cooperating
# nodes on the proximity-heavy mix (writes BENCH_7.json).
bench-cluster:
	$(GO) run ./cmd/aggbench -scale small -exp cluster

# bench-overload sweeps offered load past the admission controller's
# measured capacity and demonstrates tenant-quota fairness (writes
# BENCH_8.json; CI gates goodput at 2× overload ≥ 80% of capacity).
bench-overload:
	$(GO) run ./cmd/aggbench -scale tiny -exp overload

# bench-recycle compares benefit-driven recycling of intermediate aggregates
# + the semantic result cache against the plain engine on drill/jump and
# proximity mixes (writes BENCH_9.json; CI gates the drill-mix qps and hit
# rate with recycling on >= off and no proximity regression).
bench-recycle:
	$(GO) run ./cmd/aggbench -scale medium -exp recycle -queries 200

# bench-tiered measures the tiered store against the flat store at equal
# hot-tier RAM, plus the kill/restart warm-recovery ratio (writes
# BENCH_10.json; CI gates tiered hit >= ram hit, recovery >= 80%, qps
# penalty <= 10%).
bench-tiered:
	$(GO) run ./cmd/aggbench -scale small -exp tiered -queries 200

# fuzz-codec smoke-fuzzes the cold-tier/snapshot chunk codec: arbitrary
# bytes must never panic or over-allocate, and whatever decodes must
# re-encode canonically.
fuzz-codec:
	$(GO) test ./internal/chunk -run XXX -fuzz FuzzChunkCodec -fuzztime 10s

# soak-tiered runs the tiered-store concurrency suite (demote/promote/evict
# races, byte-accounting and dual-residency invariants) under the race
# detector.
soak-tiered:
	$(GO) test -race -run 'Tiered|Snapshot' ./internal/cache -count=1

# fuzz-wire smoke-fuzzes the frame and chunk-slab codecs: malformed input
# must never panic or over-allocate.
fuzz-wire:
	$(GO) test ./internal/wire -run XXX -fuzz FuzzFrame -fuzztime 10s
	$(GO) test ./internal/wire -run XXX -fuzz FuzzChunkDecode -fuzztime 10s

# fuzz-peer smoke-fuzzes the peer cache protocol decoders (PeerGet/PeerChunk/
# PeerPut/PeerAck) the same way.
fuzz-peer:
	$(GO) test ./internal/mtier -run XXX -fuzz FuzzPeerFrame -fuzztime 10s

# soak-shards runs the sharded-store concurrency suite under the race
# detector: the cache-level invariant soak plus the engine-level soak whose
# 4-shard subject must match a serialized single-lock reference.
soak-shards:
	$(GO) test -race -run 'Sharded|ShardDistribution|StoreStats|ConcurrentSoak|EngineConcurrent' ./internal/cache ./internal/core

# soak-cluster runs the 3-node in-process cluster under the race detector
# with one fault-injected peer: every query must still be served.
soak-cluster:
	$(GO) test -race -run 'ClusterSoak' ./internal/mtier -count=1 -v

# soak-overload storms an under-provisioned server with hostile traffic
# (Zipf convoy, deadline-bound flash crowd, quota-capped scan flood) under
# the race detector: every failure must be an in-band transient shed, no
# query may run past its deadline, and the server must serve again after.
soak-overload:
	$(GO) test -race -run 'OverloadSoak' ./internal/mtier -count=1 -v

# Full aggbench reports are regenerated on demand, never committed:
# `make results_small.txt` (or _medium/_full).
results_%.txt: FORCE
	$(GO) run ./cmd/aggbench -scale $* -exp all | tee $@

FORCE:

# fmt fails (and lists the offenders) if any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# lint is fmt + vet, plus staticcheck and govulncheck when installed (CI
# installs both; a bare checkout degrades gracefully).
lint: fmt vet
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; else echo "staticcheck not installed; skipping"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; else echo "govulncheck not installed; skipping"; fi

# cover writes the profile to a temp path (RUNNER_TEMP on CI) so a stray
# cover.out never lands in the worktree.
COVERFILE ?= $(or $(RUNNER_TEMP),/tmp)/cover.out
cover:
	$(GO) test -coverprofile=$(COVERFILE) ./...
	$(GO) tool cover -func=$(COVERFILE) | tail -1

# chaos runs the fault-injection suite under the race detector and the
# availability experiment end to end.
chaos:
	$(GO) test -race -run 'Chaos|Degraded|Flight|Breaker|Faulty|Remote|Malformed' ./internal/core ./internal/backend ./internal/mtier
	$(GO) run ./cmd/aggbench -scale tiny -exp chaos

ci: lint race cover
