# Standard targets; `make ci` is what the checks run.

GO ?= go

.PHONY: build test vet race bench bench-kernel bench-shards bench-wire soak-shards fuzz-wire fmt cover chaos ci FORCE

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 100x -run XXX .

# bench-kernel runs the aggregation-kernel micro-benchmarks with allocation
# reporting and the machine-readable kernel experiment (writes BENCH_4.json).
bench-kernel:
	$(GO) test ./internal/chunk -run XXX -bench 'RollUpInto|CellMapBuild|GridSlice' -benchmem -benchtime 20000x | tee kernel_bench.txt
	$(GO) run ./cmd/aggbench -scale small -exp kernel

# bench-shards measures cache-lock scaling across 1/4/16 shards and
# 1/4/8 concurrent clients (writes BENCH_5.json).
bench-shards:
	$(GO) run ./cmd/aggbench -scale small -exp shards

# bench-wire compares the retired gob transport against the binary framing
# layer under pipelined concurrent load (writes BENCH_6.json).
bench-wire:
	$(GO) run ./cmd/aggbench -scale tiny -exp wire

# fuzz-wire smoke-fuzzes the frame and chunk-slab codecs: malformed input
# must never panic or over-allocate.
fuzz-wire:
	$(GO) test ./internal/wire -run XXX -fuzz FuzzFrame -fuzztime 10s
	$(GO) test ./internal/wire -run XXX -fuzz FuzzChunkDecode -fuzztime 10s

# soak-shards runs the sharded-store concurrency suite under the race
# detector: the cache-level invariant soak plus the engine-level soak whose
# 4-shard subject must match a serialized single-lock reference.
soak-shards:
	$(GO) test -race -run 'Sharded|ShardDistribution|StoreStats|ConcurrentSoak|EngineConcurrent' ./internal/cache ./internal/core

# Full aggbench reports are regenerated on demand, never committed:
# `make results_small.txt` (or _medium/_full).
results_%.txt: FORCE
	$(GO) run ./cmd/aggbench -scale $* -exp all | tee $@

FORCE:

# fmt fails (and lists the offenders) if any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# chaos runs the fault-injection suite under the race detector and the
# availability experiment end to end.
chaos:
	$(GO) test -race -run 'Chaos|Degraded|Flight|Breaker|Faulty|Remote|Malformed' ./internal/core ./internal/backend ./internal/mtier
	$(GO) run ./cmd/aggbench -scale tiny -exp chaos

ci: fmt vet race cover
